//! Exactly-once inference under network chaos.
//!
//! These tests put a real client/server pair behind a seeded
//! [`ChaosProxy`] (torn chunks, delays, bit flips, connection resets on a
//! schedule that is a pure function of the seed) and assert the PR 7
//! contract:
//!
//! * every logical request is answered **exactly once** — the retry path
//!   never re-executes work (`duplicate_executions == 0`), and every
//!   delivered answer is bit-identical to the in-process `CqmSystem`
//!   reference — or it fails with a **typed** error; never a panic, a
//!   hang, or a silently wrong answer;
//! * a duplicate `(session, request)` id replays the cached answer
//!   instead of re-executing (`dedup_hits` counts it);
//! * sustained overload walks the degradation ladder down to Failsafe,
//!   where single-cue requests get typed last-good answers flagged
//!   `degraded` on the wire;
//! * the fault schedule replays from the seed at the protocol level;
//! * a warm restart mid-soak (backend swapped under the proxy) preserves
//!   bit-identical answers and the exactly-once invariant across both
//!   generations.

use std::io::{Cursor, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Barrier;
use std::time::Duration;

use cqm::classify::FisClassifier;
use cqm::core::model::{CqmModel, MODEL_VERSION};
use cqm::core::normalize::Quality;
use cqm::core::pipeline::{CqmSystem, QualifiedClassification};
use cqm::core::QualityMeasure;
use cqm::fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm::resilience::{ChaosProxy, ChaosStream, DegradationPolicy, NetFaultPlan};
use cqm::serve::protocol::{encode_frame, read_frame, FrameRead, Request, RequestId, Response};
use cqm::serve::{
    AdmissionPolicy, ClientConfig, CqmClient, CqmServer, ModelSource, ServeError, ServedModel,
    ServerConfig,
};

/// Same hand-built two-class model as `tests/serve.rs`: cheap enough that
/// every test builds its own server.
fn tiny_model() -> ServedModel {
    let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).expect("gaussian");
    let class_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.3)], vec![0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.3)], vec![0.0, 1.0]).expect("rule"),
    ])
    .expect("class fis");
    let classifier = FisClassifier::from_fis(class_fis, 2).expect("classifier");
    let quality_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
    ])
    .expect("quality fis");
    let model = CqmModel {
        version: MODEL_VERSION,
        measure: QualityMeasure::new(quality_fis).expect("measure"),
        threshold: 0.5,
        note: "chaos soak".into(),
    };
    ServedModel::new(classifier, model).expect("served model")
}

fn reference_system(model: &ServedModel) -> CqmSystem<FisClassifier> {
    CqmSystem::new(
        model.classifier().clone(),
        model.model().measure.clone(),
        model.model().filter().expect("threshold"),
    )
    .expect("reference system")
}

fn probe_cues(n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| vec![-0.1 + 1.2 * i as f64 / n as f64]).collect()
}

fn assert_bit_identical(a: &QualifiedClassification, b: &QualifiedClassification, tag: &str) {
    assert_eq!(a.class, b.class, "{tag}: class");
    assert_eq!(a.decision, b.decision, "{tag}: decision");
    match (a.quality, b.quality) {
        (Quality::Value(x), Quality::Value(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: quality bits");
        }
        (x, y) => assert_eq!(x, y, "{tag}: quality variant"),
    }
}

/// A noisy-but-survivable plan: most requests get through on the first
/// try, enough get torn/corrupted/reset that the retry and dedup paths
/// are genuinely exercised.
fn soak_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan {
        warmup_ops: 6,
        partial_p: 0.12,
        latency_p: 0.02,
        latency: Duration::from_millis(2),
        corrupt_p: 0.015,
        reset_p: 0.008,
        ..NetFaultPlan::clean(seed)
    }
}

/// Client tuned for chaos: fast typed failure detection, generous retry
/// budget, seeded jitter, fixed session id so the run is replayable.
fn chaos_client(addr: SocketAddr, session: u64) -> CqmClient {
    CqmClient::connect(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_millis(300),
            retries: 8,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(40),
            call_deadline: Duration::from_secs(20),
            session_id: Some(session),
            seed: 7,
            ..ClientConfig::default()
        },
    )
    .expect("connect through proxy")
}

/// Per-thread soak tally, merged after the scope joins.
#[derive(Default)]
struct Tally {
    issued: usize,
    delivered: usize,
    degraded: usize,
    typed_failures: usize,
    attempts: usize,
}

/// Drive `requests` cues through one client; every outcome must be a
/// bit-identical answer or a typed error.
fn drive(
    client: &mut CqmClient,
    cues: &[Vec<f64>],
    requests: usize,
    expected: &[QualifiedClassification],
    tag: &str,
) -> Tally {
    let mut tally = Tally::default();
    for i in 0..requests {
        let cue = i % cues.len();
        tally.issued += 1;
        match client.classify_answer(&cues[cue]) {
            Ok(answer) if answer.degraded => {
                // A Failsafe last-good answer is typed and flagged; it is
                // deliberately *not* compared against this cue's reference.
                tally.delivered += 1;
                tally.degraded += 1;
            }
            Ok(answer) => {
                assert_bit_identical(&answer.result, &expected[cue], &format!("{tag} req {i}"));
                tally.delivered += 1;
            }
            // Chaos may corrupt a request (CRC rejects it as BadRequest),
            // exhaust the retry budget, or tear the transport — all of
            // those are *typed*; anything else is a contract violation.
            Err(
                ServeError::Remote(_)
                | ServeError::RetriesExhausted { .. }
                | ServeError::Io { .. }
                | ServeError::Timeout(_)
                | ServeError::Protocol(_)
                | ServeError::ConnectionClosed
                | ServeError::Decode(_),
            ) => tally.typed_failures += 1,
            Err(other) => panic!("{tag} req {i}: untyped failure {other}"),
        }
        tally.attempts += client.last_attempts() as usize;
    }
    tally
}

#[test]
fn soak_exactly_once_under_scheduled_chaos() {
    let model = tiny_model();
    let reference = reference_system(&model);
    let cues = probe_cues(16);
    let expected: Vec<QualifiedClassification> = cues
        .iter()
        .map(|c| reference.classify_with_quality(c).expect("reference"))
        .collect();

    for workers in [1usize, 4] {
        let server = CqmServer::start(
            ModelSource::Fresh(tiny_model()),
            ServerConfig {
                workers,
                micro_batch: 4,
                // Torn frames must not park sessions for the default 10 s
                // during the drain.
                frame_deadline: Some(Duration::from_millis(500)),
                ladder: Some(DegradationPolicy::default()),
                ..ServerConfig::default()
            },
        )
        .expect("start");
        let mut proxy =
            ChaosProxy::start(server.local_addr(), soak_plan(0xCA05 + workers as u64))
                .expect("proxy");
        let addr = proxy.local_addr();

        let clients = 6usize;
        let per_client = 80usize;
        let started = std::time::Instant::now();
        let barrier = Barrier::new(clients);
        let tallies: Vec<Tally> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|k| {
                    let (cues, expected, barrier) = (&cues, &expected, &barrier);
                    scope.spawn(move || {
                        let mut c = chaos_client(addr, 1000 + k as u64);
                        barrier.wait();
                        drive(
                            &mut c,
                            cues,
                            per_client,
                            expected,
                            &format!("workers={workers} client={k}"),
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("soak thread")).collect()
        });

        eprintln!("soak wave workers={workers}: {:?}", started.elapsed());
        let issued: usize = tallies.iter().map(|t| t.issued).sum();
        let delivered: usize = tallies.iter().map(|t| t.delivered).sum();
        let typed: usize = tallies.iter().map(|t| t.typed_failures).sum();
        assert_eq!(issued, clients * per_client);
        assert_eq!(
            delivered + typed,
            issued,
            "workers={workers}: every request accounted for"
        );
        assert!(
            delivered * 100 >= issued * 85,
            "workers={workers}: retries should deliver most requests through chaos \
             (delivered {delivered}/{issued})"
        );

        proxy.stop();
        let health = server.shutdown().expect("shutdown");
        let attempts: usize = tallies.iter().map(|t| t.attempts).sum();
        eprintln!(
            "soak wave workers={workers}: delivered={delivered} typed={typed} attempts={attempts} health={health:?}"
        );
        assert_eq!(
            health.duplicate_executions, 0,
            "workers={workers}: exactly-once means zero re-executions: {health:?}"
        );
    }
}

#[test]
fn duplicate_request_ids_replay_cached_answers_exactly_once() {
    let model = tiny_model();
    let reference = reference_system(&model);
    let server = CqmServer::start(ModelSource::Fresh(tiny_model()), ServerConfig::default())
        .expect("start");
    let addr = server.local_addr();

    // A raw client that *misbehaves on purpose*: the same (session,
    // request) id sent twice on one connection, as a retrying client
    // whose first answer was lost in transit would.
    let frame = encode_frame(&Request::Classify {
        id: RequestId {
            session: 77,
            request: 9,
        },
        tenant: None,
        cues: vec![0.8],
    })
    .expect("encode");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(&frame).expect("first send");
    stream.write_all(&frame).expect("duplicate send");
    stream.flush().expect("flush");

    let mut answers = Vec::new();
    for round in 0..2 {
        match read_frame::<_, Response>(&mut stream).expect("read") {
            FrameRead::Frame(Response::Classified { result }) => answers.push(result),
            other => panic!("round {round}: expected a classified answer, got {other:?}"),
        }
    }
    let expected = reference.classify_with_quality(&[0.8]).expect("reference");
    assert_bit_identical(&answers[0], &expected, "first execution");
    assert_bit_identical(&answers[1], &answers[0], "replayed duplicate");
    drop(stream);

    let health = server.shutdown().expect("shutdown");
    assert_eq!(health.dedup_hits, 1, "the duplicate must hit the window");
    assert_eq!(health.duplicate_executions, 0, "and must not re-execute");
    assert_eq!(health.rows_classified, 1, "one row, despite two requests");
}

#[test]
fn failsafe_ladder_serves_typed_degraded_answers_under_sustained_overload() {
    let model = tiny_model();
    let reference = reference_system(&model);
    let server = CqmServer::start(
        ModelSource::Fresh(tiny_model()),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            micro_batch: 1,
            admission: AdmissionPolicy::Reject,
            eval_delay: Some(Duration::from_millis(50)),
            // Two rejections are enough to hit Failsafe, and recovery is
            // set far out of reach so the state holds for the assertion.
            ladder: Some(DegradationPolicy {
                degrade_after: 1,
                failsafe_after: 2,
                recover_after: 1000,
                healthy_after: 1000,
            }),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.local_addr();

    // Prime the last-good cache with a clean answer before the storm.
    let mut primer = CqmClient::connect(addr, ClientConfig::default()).expect("connect");
    let primed = primer.classify(&[0.75]).expect("prime last-good");
    let expected = reference.classify_with_quality(&[0.75]).expect("reference");
    assert_bit_identical(&primed, &expected, "primed answer");

    // Storm: single-shot clients against a 1-slot queue with a slow
    // worker. Early rejections surface as Overloaded and walk the ladder
    // down; once Failsafe is reached, rejected singles get the last-good
    // answer flagged degraded.
    let clients = 10usize;
    let rounds = 4usize;
    let barrier = Barrier::new(clients);
    let degraded_seen: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut c = CqmClient::connect(
                        addr,
                        ClientConfig {
                            retries: 0, // surface Overloaded instead of absorbing it
                            ..ClientConfig::default()
                        },
                    )
                    .expect("connect");
                    barrier.wait();
                    let mut degraded = 0usize;
                    for _ in 0..rounds {
                        match c.classify_answer(&[0.75]) {
                            Ok(answer) if answer.degraded => degraded += 1,
                            Ok(_fresh) => {}
                            Err(ServeError::Remote(_)) => {}
                            Err(other) => panic!("storm answers must stay typed: {other}"),
                        }
                    }
                    degraded
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("storm thread")).sum()
    });
    assert!(
        degraded_seen >= 1,
        "sustained overload must reach Failsafe and serve degraded answers"
    );

    let health = server.shutdown().expect("shutdown");
    assert_eq!(health.degraded_served as usize, degraded_seen);
    assert_eq!(
        health.ladder.as_deref(),
        Some("failsafe"),
        "recovery thresholds are unreachable, so the ladder must still be down: {health:?}"
    );
}

#[test]
fn fault_schedule_replays_from_seed_at_the_protocol_level() {
    // The soak's replayability claim, pinned at the protocol layer: the
    // same (plan, stream id) applied to the same frame bytes produces the
    // identical mutilated byte stream, and therefore the identical decode
    // outcome — pass, typed CRC rejection, or typed torn frame.
    let frame = encode_frame(&Request::Classify {
        id: RequestId {
            session: 3,
            request: 1,
        },
        tenant: None,
        cues: vec![0.4],
    })
    .expect("encode");
    let plan = NetFaultPlan {
        partial_p: 0.5,
        corrupt_p: 1.0,
        ..NetFaultPlan::clean(0xBEEF)
    };
    let run = || {
        let mut chaos =
            ChaosStream::new(Cursor::new(frame.clone()), &plan, 0).expect("chaos stream");
        let mut mutilated = Vec::new();
        chaos.read_to_end(&mut mutilated).expect("read through chaos");
        let decode = read_frame::<_, Request>(&mut Cursor::new(mutilated.clone()));
        (mutilated, format!("{decode:?}"), chaos.stats())
    };
    let (bytes_a, outcome_a, stats_a) = run();
    let (bytes_b, outcome_b, stats_b) = run();
    assert_eq!(bytes_a, bytes_b, "same seed => same mutilation");
    assert_eq!(outcome_a, outcome_b, "=> same protocol outcome");
    assert_eq!(stats_a, stats_b);
    assert_ne!(bytes_a, frame, "corrupt_p = 1 must actually flip bits");
    assert!(
        outcome_a.contains("Err"),
        "a bit-flipped frame must decode to a typed error, got {outcome_a}"
    );
}

#[test]
fn warm_restart_mid_soak_preserves_bit_identical_answers() {
    let dir = std::env::temp_dir().join(format!("cqm_chaos_restart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ck = dir.join("serve.ckpt");
    let model = tiny_model();
    let reference = reference_system(&model);
    let cues = probe_cues(12);
    let expected: Vec<QualifiedClassification> = cues
        .iter()
        .map(|c| reference.classify_with_quality(c).expect("reference"))
        .collect();

    let config = |checkpoint: Option<std::path::PathBuf>| ServerConfig {
        workers: 2,
        checkpoint,
        frame_deadline: Some(Duration::from_millis(500)),
        ladder: Some(DegradationPolicy::default()),
        ..ServerConfig::default()
    };

    // Generation 1 behind the chaos proxy.
    let first = CqmServer::start(ModelSource::Fresh(tiny_model()), config(Some(ck.clone())))
        .expect("start gen 1");
    let mut proxy =
        ChaosProxy::start(first.local_addr(), soak_plan(0x0DD5EED)).expect("proxy");
    let addr = proxy.local_addr();

    let clients = 4usize;
    let per_phase = 40usize;
    let phase = |tag: &str| -> Vec<Tally> {
        let barrier = Barrier::new(clients);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|k| {
                    let (cues, expected, barrier, tag) = (&cues, &expected, &barrier, tag);
                    scope.spawn(move || {
                        let mut c = chaos_client(addr, 2000 + k as u64);
                        barrier.wait();
                        drive(&mut c, cues, per_phase, expected, &format!("{tag} client={k}"))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("phase thread")).collect()
        })
    };

    let phase1 = phase("gen1");
    let delivered1: usize = phase1.iter().map(|t| t.delivered).sum();
    assert!(delivered1 > 0, "phase 1 must deliver through the chaos");

    // Warm restart mid-soak: drain generation 1 (writes the checkpoint),
    // warm-start generation 2 on a fresh port, and swap it in under the
    // proxy. The clients' pooled connections die with the old backend and
    // their retries carry the next phase to the new one.
    let health1 = first.shutdown().expect("gen 1 shutdown");
    assert_eq!(health1.duplicate_executions, 0, "gen 1 exactly-once: {health1:?}");
    assert!(ck.exists(), "drain must write the checkpoint");
    let second =
        CqmServer::start(ModelSource::WarmStart(ck.clone()), config(None)).expect("warm start");
    proxy.retarget(second.local_addr());

    let phase2 = phase("gen2");
    let delivered2: usize = phase2.iter().map(|t| t.delivered).sum();
    let typed2: usize = phase2.iter().map(|t| t.typed_failures).sum();
    assert_eq!(delivered2 + typed2, clients * per_phase, "phase 2 accounted");
    assert!(delivered2 > 0, "phase 2 must deliver through the restarted backend");

    // The restarted generation is genuinely warm-started — asked through
    // the chaos proxy, like everything else.
    let mut prober = chaos_client(addr, 2999);
    let info = prober.snapshot().expect("snapshot through chaos");
    assert!(info.warm_started, "generation 2 must be a warm start");
    assert_eq!(info.checkpoint_seq, 1);
    drop(prober);

    proxy.stop();
    let health2 = second.shutdown().expect("gen 2 shutdown");
    assert_eq!(health2.duplicate_executions, 0, "gen 2 exactly-once: {health2:?}");
    std::fs::remove_dir_all(&dir).ok();
}
