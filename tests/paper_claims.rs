//! The paper's evaluation claims as executable assertions (shape-level —
//! exact numbers from the authors' 24 physical samples are out of scope;
//! see EXPERIMENTS.md).

use cqm::core::normalize::{normalize, Quality};
use cqm::stats::mle::QualityGroups;
use cqm::stats::probabilities::TailProbabilities;
use cqm::stats::threshold::optimal_threshold;

/// §2.1.3 — the normalization maps onto `[0,1] ∪ {ε}` with the stated
/// ε-domain boundaries at −0.5 and 1.5.
#[test]
fn normalization_domain_partition() {
    let mut x = -1.0;
    while x <= 2.0 {
        match normalize(x) {
            Quality::Value(v) => {
                assert!((0.0..=1.0).contains(&v));
                assert!(
                    (-0.5..=1.5).contains(&x),
                    "value produced outside the valid domain at {x}"
                );
            }
            Quality::Epsilon => {
                assert!(
                    !(-0.5..=1.5).contains(&x),
                    "epsilon produced inside the valid domain at {x}"
                );
            }
        }
        x += 0.001;
    }
}

/// §2.32/§3.2 — for an unbalanced (mostly-right) sample the optimal
/// threshold sits close to the high end, like the paper's s = 0.81.
#[test]
fn unbalanced_threshold_near_high_end() {
    // 16:8 composition shaped like the paper's Fig. 5 statistics.
    let right: Vec<f64> = (0..16).map(|i| 0.88 + 0.008 * i as f64).collect();
    let wrong: Vec<f64> = (0..8).map(|i| 0.25 + 0.05 * i as f64).collect();
    let groups = QualityGroups::fit(&right, &wrong).unwrap();
    let t = optimal_threshold(&groups).unwrap();
    assert!(
        t.value > 0.6,
        "threshold {t} should be near the high end for unbalanced data"
    );
    assert!(t.value < groups.right.mu());
}

/// §2.33 — the selection identity P(right|q>s) = P(wrong|q<s) holds exactly
/// at the density-intersection threshold.
#[test]
fn selection_identity_at_intersection() {
    let right = [0.92, 0.95, 0.98, 0.91, 0.99, 0.94];
    let wrong = [0.3, 0.5, 0.45, 0.6];
    let groups = QualityGroups::fit(&right, &wrong).unwrap();
    let t = optimal_threshold(&groups).unwrap();
    let p = TailProbabilities::at(&groups, &t);
    assert!((p.selection_right - p.selection_wrong).abs() < 1e-10);
    // And the four §2.33 quantities are probabilities.
    for v in [
        p.selection_right,
        p.selection_wrong,
        p.false_negative,
        p.false_positive,
    ] {
        assert!((0.0..=1.0).contains(&v));
    }
}

/// §3.2 headline — filtering the paper's 16/8 scenario at a separating
/// threshold discards exactly the wrong third and lifts accuracy to 100 %.
#[test]
fn headline_improvement_with_separating_measure() {
    use cqm::core::filter::QualityFilter;
    let mut samples = Vec::new();
    for i in 0..16 {
        samples.push((Quality::Value(0.9 + 0.005 * i as f64), true));
    }
    for i in 0..8 {
        samples.push((Quality::Value(0.2 + 0.04 * i as f64), false));
    }
    let filter = QualityFilter::new(0.81).unwrap();
    let outcome = filter.evaluate(&samples);
    assert!((outcome.discard_rate() - 1.0 / 3.0).abs() < 1e-12);
    assert!((outcome.accuracy_before() - 2.0 / 3.0).abs() < 1e-12);
    assert!((outcome.accuracy_after() - 1.0).abs() < 1e-12);
    assert!((outcome.improvement() - 1.0 / 3.0).abs() < 1e-12);
}

/// End-to-end shape on the simulated testbed: the trained system's
/// statistical analysis is ordered and the filter helps (smoke-level
/// version of the IMP33 experiment — the full sweep lives in cqm-bench).
#[test]
fn trained_system_reproduces_improvement_shape() {
    use cqm::appliance::pen::train_pen;
    let build = train_pen(31337, 1).expect("training");
    let probs = &build.trained_cqm.probabilities;
    assert!(build.trained_cqm.groups.is_ordered());
    assert!(
        probs.selection_right > 0.2,
        "selection index {} too weak",
        probs.selection_right
    );
    // The threshold reflects the error rate: mostly-right training data
    // pushes it toward the right mean (paper §3.2's observation).
    let t = build.trained_cqm.threshold.value;
    let mid = 0.5;
    assert!(
        t > mid - 0.1,
        "threshold {t} unexpectedly low for unbalanced training data"
    );
}
