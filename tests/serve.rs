//! Chaos → determinism → warm-restart integration suite for `cqm-serve`.
//!
//! The contract under test (ISSUE: networked inference service):
//!
//! * malformed input — torn frames, truncated frames, flipped bytes,
//!   oversized length prefixes — surfaces as typed wire errors or clean
//!   disconnects, **never** a panic, and never takes the server down for
//!   other clients (mirrors `tests/recovery.rs` for the journal);
//! * the same requests produce **bit-identical** responses at any worker
//!   count and from any mix of concurrent connections;
//! * overload produces typed `Overloaded` answers, not hangs or drops;
//! * a drain-then-checkpoint shutdown warm-starts a second instance that
//!   answers bit-identically and resumes the checkpoint sequence.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Barrier;
use std::time::Duration;

use cqm::classify::FisClassifier;
use cqm::core::model::{CqmModel, MODEL_VERSION};
use cqm::core::normalize::Quality;
use cqm::core::pipeline::{CqmSystem, QualifiedClassification};
use cqm::core::QualityMeasure;
use cqm::fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm::serve::protocol::{
    encode_frame, encode_frame_with_version, read_frame, FrameRead, Request, RequestId, Response,
};
use cqm::serve::{
    AdmissionPolicy, ClientConfig, CqmClient, CqmServer, ModelSource, ServedModel, ServerConfig,
    ServeError, WireErrorKind,
};

/// Hand-built two-class model over one cue in [0, 1]: cheap enough that
/// every test can build its own server (no ANFIS training in this suite).
fn tiny_model() -> ServedModel {
    let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).expect("gaussian");
    let class_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.3)], vec![0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.3)], vec![0.0, 1.0]).expect("rule"),
    ])
    .expect("class fis");
    let classifier = FisClassifier::from_fis(class_fis, 2).expect("classifier");
    let quality_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
    ])
    .expect("quality fis");
    let model = CqmModel {
        version: MODEL_VERSION,
        measure: QualityMeasure::new(quality_fis).expect("measure"),
        threshold: 0.5,
        note: "serve chaos suite".into(),
    };
    ServedModel::new(classifier, model).expect("served model")
}

/// The in-process reference the served answers must match bit-for-bit.
fn reference_system(model: &ServedModel) -> CqmSystem<FisClassifier> {
    CqmSystem::new(
        model.classifier().clone(),
        model.model().measure.clone(),
        model.model().filter().expect("threshold"),
    )
    .expect("reference system")
}

fn start_default() -> CqmServer {
    CqmServer::start(ModelSource::Fresh(tiny_model()), ServerConfig::default()).expect("start")
}

fn client(addr: SocketAddr) -> CqmClient {
    CqmClient::connect(addr, ClientConfig::default()).expect("connect")
}

/// Deterministic probe cues spread over (and slightly past) the covered
/// range, so the set exercises accepts, discards and both classes.
fn probe_cues(n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| vec![-0.1 + 1.2 * i as f64 / n as f64]).collect()
}

fn assert_bit_identical(a: &QualifiedClassification, b: &QualifiedClassification, tag: &str) {
    assert_eq!(a.class, b.class, "{tag}: class");
    assert_eq!(a.decision, b.decision, "{tag}: decision");
    match (a.quality, b.quality) {
        (Quality::Value(x), Quality::Value(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: quality bits");
        }
        (x, y) => assert_eq!(x, y, "{tag}: quality variant"),
    }
}

/// Send raw bytes, close the write side, and collect whatever the server
/// answers before hanging up. Returns the typed goodbye if one arrived.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    // The server may rightfully hang up mid-send (e.g. it already refused
    // a corrupted length prefix); a failed write/half-close is then part
    // of the chaos, not a test failure.
    if stream.write_all(bytes).is_err() {
        return None;
    }
    if stream.shutdown(Shutdown::Write).is_err() {
        return None;
    }
    match read_frame::<_, Response>(&mut stream) {
        Ok(FrameRead::Frame(response)) => Some(response),
        // A torn exchange may race the goodbye; EOF and transport errors
        // are acceptable — the assertions below only require that the
        // server itself stays up.
        Ok(FrameRead::Eof) | Ok(FrameRead::Idle) | Err(_) => None,
    }
}

/// After any chaos, the server must still answer a clean client.
fn assert_still_serving(addr: SocketAddr, reference: &CqmSystem<FisClassifier>) {
    let mut c = client(addr);
    let served = c.classify(&[0.9]).expect("server still serving");
    let expected = reference.classify_with_quality(&[0.9]).expect("reference");
    assert_bit_identical(&served, &expected, "post-chaos probe");
}

#[test]
fn truncated_frames_never_kill_the_server() {
    let model = tiny_model();
    let reference = reference_system(&model);
    let server = start_default();
    let addr = server.local_addr();

    let frame = encode_frame(&Request::Classify {
        id: RequestId {
            session: 500,
            request: 1,
        },
        tenant: None,
        cues: vec![0.5],
    })
    .expect("encode");
    // Every strict prefix of a valid frame: header cut short, payload cut
    // short, empty connection.
    for cut in [0, 1, 4, 11, 12, 13, frame.len() / 2, frame.len() - 1] {
        assert!(cut < frame.len());
        let goodbye = send_raw(addr, &frame[..cut]);
        if let Some(Response::Error { error }) = goodbye {
            assert_eq!(error.kind, WireErrorKind::BadRequest, "cut={cut}");
        }
    }
    assert_still_serving(addr, &reference);
    let health = server.shutdown().expect("shutdown");
    // Mid-frame EOFs are session errors; an empty connection (cut=0) is a
    // clean EOF and must NOT be counted as one.
    assert!(health.session_errors >= 6, "health: {health:?}");
}

#[test]
fn corrupt_frame_fuzzing_yields_typed_errors() {
    let model = tiny_model();
    let reference = reference_system(&model);
    let server = start_default();
    let addr = server.local_addr();

    let frame = encode_frame(&Request::Classify {
        id: RequestId {
            session: 501,
            request: 1,
        },
        tenant: None,
        cues: vec![0.25],
    })
    .expect("encode");
    // Flip one byte at a time across the whole frame — length prefix,
    // version, CRC and payload alike. No flip may panic the server or
    // produce a silently-wrong classification: every answer must be a
    // typed error (or a dropped torn exchange).
    for i in 0..frame.len() {
        let mut corrupted = frame.clone();
        corrupted[i] ^= 0x40;
        match send_raw(addr, &corrupted) {
            Some(Response::Error { error }) => {
                // A flip landing in the version word (bytes 4..8) gets the
                // dedicated negotiation refusal; anywhere else it is a
                // generic malformed-frame goodbye.
                let expected = if (4..8).contains(&i) {
                    WireErrorKind::UnsupportedVersion
                } else {
                    WireErrorKind::BadRequest
                };
                assert_eq!(error.kind, expected, "flip at {i}");
            }
            Some(other) => panic!("flip at {i} produced a non-error answer: {other:?}"),
            None => {}
        }
    }
    assert_still_serving(addr, &reference);
    server.shutdown().expect("shutdown");
}

#[test]
fn oversized_frames_are_rejected_before_allocation() {
    let model = tiny_model();
    let reference = reference_system(&model);
    let server = start_default();
    let addr = server.local_addr();

    // A header announcing a payload far beyond MAX_FRAME_LEN. The server
    // must refuse from the 12 header bytes alone — the gigabyte is never
    // allocated, let alone awaited.
    let mut header = Vec::new();
    header.extend_from_slice(&(1u32 << 30).to_le_bytes());
    header.extend_from_slice(&1u32.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    let goodbye = send_raw(addr, &header).expect("typed rejection");
    let Response::Error { error } = goodbye else {
        panic!("expected an error, got {goodbye:?}");
    };
    assert_eq!(error.kind, WireErrorKind::BadRequest);
    assert!(
        error.detail.contains("caps"),
        "detail should name the cap: {}",
        error.detail
    );
    assert_still_serving(addr, &reference);
    server.shutdown().expect("shutdown");
}

#[test]
fn concurrent_clients_get_bit_identical_answers_at_any_worker_count() {
    let model = tiny_model();
    let reference = reference_system(&model);
    let cues = probe_cues(24);
    let expected: Vec<QualifiedClassification> = cues
        .iter()
        .map(|c| reference.classify_with_quality(c).expect("reference"))
        .collect();

    for workers in [1usize, 4] {
        let server = CqmServer::start(
            ModelSource::Fresh(tiny_model()),
            ServerConfig {
                workers,
                micro_batch: 4,
                ..ServerConfig::default()
            },
        )
        .expect("start");
        let addr = server.local_addr();

        let clients = 4usize;
        let barrier = Barrier::new(clients);
        std::thread::scope(|scope| {
            for _ in 0..clients {
                scope.spawn(|| {
                    let mut c = client(addr);
                    barrier.wait();
                    // Interleave singles and batches so micro-batching has
                    // mixed work to fold.
                    for (i, cue) in cues.iter().enumerate() {
                        let served = c.classify(cue).expect("classify");
                        assert_bit_identical(&served, &expected[i], &format!("workers={workers} row={i}"));
                    }
                    let batched = c.classify_batch(&cues).expect("batch");
                    assert_eq!(batched.len(), expected.len());
                    for (i, served) in batched.iter().enumerate() {
                        assert_bit_identical(served, &expected[i], &format!("workers={workers} batch row={i}"));
                    }
                });
            }
        });

        let health = server.shutdown().expect("shutdown");
        assert_eq!(
            health.rows_classified,
            (clients * cues.len() * 2) as u64,
            "workers={workers}"
        );
        assert_eq!(health.session_errors, 0, "workers={workers}");
    }
}

#[test]
fn batch_requests_are_atomic_and_survivable() {
    let model = tiny_model();
    let reference = reference_system(&model);
    let server = start_default();
    let mut c = client(server.local_addr());

    // A NaN row never even reaches the wire: JSON cannot represent it, so
    // the client refuses at encode time with a typed local error.
    let err = c
        .classify_batch(&[vec![0.2], vec![f64::NAN]])
        .expect_err("NaN row");
    assert!(matches!(err, ServeError::Decode(_)), "got {err}");

    // One bad (wrong-dimension) row rejects the whole batch with a typed
    // remote error...
    let err = c
        .classify_batch(&[vec![0.2], vec![0.3, 0.4], vec![0.8]])
        .expect_err("dimension mismatch row");
    match err {
        ServeError::Remote(e) => assert_eq!(e.kind, WireErrorKind::BadRequest),
        other => panic!("expected a typed remote error, got {other}"),
    }
    // ...and the connection survives to serve the corrected batch.
    let ok = c
        .classify_batch(&[vec![0.2], vec![0.8]])
        .expect("clean batch");
    assert_eq!(ok.len(), 2);
    let expected = reference.classify_with_quality(&[0.8]).expect("reference");
    assert_bit_identical(&ok[1], &expected, "batch after failure");
    server.shutdown().expect("shutdown");
}

#[test]
fn overload_produces_typed_answers_and_the_server_recovers() {
    let model = tiny_model();
    let reference = reference_system(&model);
    let server = CqmServer::start(
        ModelSource::Fresh(tiny_model()),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            micro_batch: 1,
            admission: AdmissionPolicy::Reject,
            // Each micro-batch takes ~100 ms, so concurrent requests pile
            // up against the 1-slot queue.
            eval_delay: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let addr = server.local_addr();

    let clients = 6usize;
    let barrier = Barrier::new(clients);
    let outcomes: Vec<Result<QualifiedClassification, ServeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut c = CqmClient::connect(
                        addr,
                        ClientConfig {
                            retries: 0, // surface Overloaded instead of absorbing it
                            ..ClientConfig::default()
                        },
                    )
                    .expect("connect");
                    barrier.wait();
                    c.classify(&[0.75])
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread"))
            .collect()
    });

    let mut answered = 0usize;
    let mut overloaded = 0usize;
    for outcome in outcomes {
        match outcome {
            Ok(result) => {
                answered += 1;
                let expected = reference.classify_with_quality(&[0.75]).expect("reference");
                assert_bit_identical(&result, &expected, "answered under load");
            }
            Err(ServeError::Remote(e)) => {
                assert_eq!(e.kind, WireErrorKind::Overloaded);
                overloaded += 1;
            }
            Err(other) => panic!("overload must stay typed, got {other}"),
        }
    }
    assert!(answered >= 1, "someone must get through");
    assert!(overloaded >= 1, "the 1-slot queue must shed under 6 clients");

    // Overload is a condition, not a failure: the drained server has
    // rejected counters but zero session errors, and still serves.
    assert_still_serving(addr, &reference);
    let health = server.shutdown().expect("shutdown");
    assert!(health.rejected >= overloaded as u64);
    assert_eq!(health.session_errors, 0);
}

#[test]
fn warm_restart_resumes_sequence_and_answers_bitwise() {
    let dir = std::env::temp_dir().join(format!("cqm_serve_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ck = dir.join("serve.ckpt");
    let model = tiny_model();
    let reference = reference_system(&model);
    let cues = probe_cues(12);

    let first = CqmServer::start(
        ModelSource::Fresh(tiny_model()),
        ServerConfig {
            checkpoint: Some(ck.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("start fresh");
    let mut c = client(first.local_addr());
    let first_answers: Vec<QualifiedClassification> = cues
        .iter()
        .map(|cue| c.classify(cue).expect("first generation"))
        .collect();
    drop(c);
    first.shutdown().expect("first shutdown");
    assert!(ck.exists(), "shutdown must write the checkpoint");

    // Generation 2: warm-started, sequence advanced, same answers.
    let second = CqmServer::start(
        ModelSource::WarmStart(ck.clone()),
        ServerConfig {
            checkpoint: Some(ck.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("warm start");
    let mut c = client(second.local_addr());
    let info = c.snapshot().expect("snapshot");
    assert!(info.warm_started);
    assert_eq!(info.checkpoint_seq, 1);
    for (i, cue) in cues.iter().enumerate() {
        let served = c.classify(cue).expect("second generation");
        assert_bit_identical(&served, &first_answers[i], &format!("generation 2 row {i}"));
        let expected = reference.classify_with_quality(cue).expect("reference");
        assert_bit_identical(&served, &expected, &format!("generation 2 vs in-process row {i}"));
    }
    drop(c);
    second.shutdown().expect("second shutdown");

    // Generation 3 sees the advanced sequence.
    let third = CqmServer::start(ModelSource::WarmStart(ck.clone()), ServerConfig::default())
        .expect("third start");
    let mut c = client(third.local_addr());
    assert_eq!(c.snapshot().expect("snapshot").checkpoint_seq, 2);
    drop(c);
    third.shutdown().expect("third shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_restart_survives_kills_mid_handshake_and_mid_batch() {
    let dir = std::env::temp_dir().join(format!("cqm_serve_kill_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ck = dir.join("serve.ckpt");
    let model = tiny_model();
    let reference = reference_system(&model);
    let cues = probe_cues(8);

    let first = CqmServer::start(
        ModelSource::Fresh(tiny_model()),
        ServerConfig {
            checkpoint: Some(ck.clone()),
            // Short frame deadline so the torn connections below cannot
            // park the drain for the default ten seconds.
            frame_deadline: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    )
    .expect("start fresh");
    let addr = first.local_addr();

    // Answer something real first, so the restart has work to reproduce.
    let mut c = client(addr);
    let first_answers: Vec<QualifiedClassification> = cues
        .iter()
        .map(|cue| c.classify(cue).expect("first generation"))
        .collect();
    drop(c);

    // Kill #1 lands mid-handshake: a connection that has sent only part
    // of a frame *header* when the shutdown begins.
    let mut mid_handshake = TcpStream::connect(addr).expect("connect");
    let frame = encode_frame(&Request::Classify {
        id: RequestId {
            session: 600,
            request: 1,
        },
        tenant: None,
        cues: vec![0.5],
    })
    .expect("encode");
    mid_handshake.write_all(&frame[..5]).expect("partial header");
    mid_handshake.flush().expect("flush");

    // Kill #2 lands mid-batch: a ClassifyBatch frame torn halfway through
    // its payload — the analogue of a torn record at the journal boundary.
    let mut mid_batch = TcpStream::connect(addr).expect("connect");
    let batch_frame = encode_frame(&Request::ClassifyBatch {
        id: RequestId {
            session: 600,
            request: 2,
        },
        tenant: None,
        rows: cues.clone(),
    })
    .expect("encode batch");
    let cut = batch_frame.len() / 2;
    mid_batch.write_all(&batch_frame[..cut]).expect("partial batch");
    mid_batch.flush().expect("flush");

    // Wait for the frame deadline to cut both torn connections off while
    // the server is still live — shutting down immediately would race the
    // acceptor: a connection still in the kernel backlog when draining
    // begins is dropped unanswered instead of counted.
    let mut probe = client(addr);
    let waited = std::time::Instant::now();
    let health = loop {
        let h = probe.health().expect("health probe");
        if h.session_errors >= 2 || waited.elapsed() > Duration::from_secs(10) {
            break h;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        health.session_errors >= 2,
        "both torn connections are session errors: {health:?}"
    );
    drop(probe);
    drop(mid_handshake);
    drop(mid_batch);

    // The drain still writes the checkpoint.
    first.shutdown().expect("shutdown with torn connections");
    assert!(ck.exists(), "checkpoint written despite torn connections");

    // The restarted generation warm-starts and answers bit-identically.
    let second = CqmServer::start(
        ModelSource::WarmStart(ck.clone()),
        ServerConfig::default(),
    )
    .expect("warm start after torn shutdown");
    let mut c = client(second.local_addr());
    let info = c.snapshot().expect("snapshot");
    assert!(info.warm_started);
    assert_eq!(info.checkpoint_seq, 1);
    for (i, cue) in cues.iter().enumerate() {
        let served = c.classify(cue).expect("second generation");
        assert_bit_identical(&served, &first_answers[i], &format!("post-kill row {i}"));
        let expected = reference.classify_with_quality(cue).expect("reference");
        assert_bit_identical(&served, &expected, &format!("post-kill vs in-process row {i}"));
    }
    drop(c);
    second.shutdown().expect("second shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_checkpoint_tail_is_a_typed_error_never_a_silent_fallback() {
    let dir = std::env::temp_dir().join(format!("cqm_serve_torn_ck_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ck = dir.join("serve.ckpt");

    let first = CqmServer::start(
        ModelSource::Fresh(tiny_model()),
        ServerConfig {
            checkpoint: Some(ck.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("start fresh");
    first.shutdown().expect("shutdown");
    let bytes = std::fs::read(&ck).expect("checkpoint bytes");
    assert!(bytes.len() > 16);

    // Tear the tail off — the crash-mid-write shape a journal boundary
    // leaves behind.
    std::fs::write(&ck, &bytes[..bytes.len() - 7]).expect("torn write");

    // WarmStart refuses with a typed error, not a panic...
    let Err(err) = CqmServer::start(ModelSource::WarmStart(ck.clone()), ServerConfig::default())
    else {
        panic!("torn checkpoint must refuse");
    };
    assert!(matches!(err, ServeError::Persist(_)), "got {err}");

    // ...and WarmStartOr also refuses: corruption is never silently
    // papered over by the fallback (only a *missing* file is).
    let Err(err) = CqmServer::start(
        ModelSource::WarmStartOr {
            path: ck.clone(),
            fallback: Box::new(tiny_model()),
        },
        ServerConfig::default(),
    ) else {
        panic!("torn checkpoint must refuse even with a fallback");
    };
    assert!(matches!(err, ServeError::Persist(_)), "got {err}");

    // Restoring the intact bytes restores the warm start.
    std::fs::write(&ck, &bytes).expect("restore");
    let second = CqmServer::start(ModelSource::WarmStart(ck.clone()), ServerConfig::default())
        .expect("intact checkpoint warm-starts");
    second.shutdown().expect("second shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn outdated_client_version_gets_typed_refusal_from_the_server() {
    // Version negotiation, server side: a frame stamped with the retired
    // v2 (or an unknown future v9) must be answered with the dedicated
    // `UnsupportedVersion` refusal naming the build's window — not a
    // generic bad-request, not a silent hangup, and never a crash.
    let model = tiny_model();
    let reference = reference_system(&model);
    let server = CqmServer::start(ModelSource::Fresh(model), ServerConfig::default())
        .expect("start");
    let addr = server.local_addr();

    for stale in [2u32, 9u32] {
        let frame = encode_frame_with_version(
            stale,
            &Request::Classify {
                id: RequestId {
                    session: 700,
                    request: u64::from(stale),
                },
                tenant: None,
                cues: vec![0.5],
            },
        )
        .expect("encode");
        match send_raw(addr, &frame) {
            Some(Response::Error { error }) => {
                assert_eq!(error.kind, WireErrorKind::UnsupportedVersion, "v{stale}");
                assert!(
                    error.detail.contains(&format!("version {stale}")),
                    "refusal must name the offending version: {}",
                    error.detail
                );
            }
            other => panic!("v{stale} frame got {other:?}, want a typed refusal"),
        }
    }
    assert_still_serving(addr, &reference);
    let health = server.shutdown().expect("shutdown");
    assert_eq!(health.version_rejections, 2, "health: {health:?}");
}

#[test]
fn outdated_server_version_fails_the_client_fast_without_retries() {
    // Version negotiation, client side: an answer stamped v2 surfaces as
    // `ServeError::ProtocolVersion { found: 2 }` on the *first* attempt.
    // A version mismatch is deterministic — retrying would re-fail — so
    // it must not be treated as a transient transport fault.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake_v2_server = std::thread::spawn(move || {
        let (mut stream, _peer) = listener.accept().expect("accept");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // Consume the (valid v3) request, then answer in yesterday's
        // dialect.
        match read_frame::<_, Request>(&mut stream) {
            Ok(FrameRead::Frame(_)) => {}
            other => panic!("fake server expected a request, got {other:?}"),
        }
        let reply = encode_frame_with_version(2, &Response::ShuttingDown).expect("encode v2");
        stream.write_all(&reply).expect("write v2 reply");
        stream.flush().expect("flush");
        // Hold the socket open until the client has parsed the header, so
        // the failure is the version check, not a racing disconnect.
        std::thread::sleep(Duration::from_millis(200));
    });

    let mut c = CqmClient::connect(
        addr,
        ClientConfig {
            retries: 3,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let err = c.classify(&[0.5]).expect_err("v2 answer must fail");
    match err {
        ServeError::ProtocolVersion { found, supported } => {
            assert_eq!(found, 2);
            assert!(supported >= 3);
        }
        other => panic!("want ProtocolVersion, got {other}"),
    }
    assert_eq!(c.last_attempts(), 1, "version mismatch must not be retried");
    fake_v2_server.join().expect("fake server");
}

/// A server opted into `EvalPrecision::BoundedUlp` still answers every
/// request, its quality values stay bit-identical to the exact in-process
/// pipeline (the quality kernel never approximates), and every class
/// matches the engine-level bounded path.
#[test]
fn bounded_precision_server_matches_engine_and_keeps_quality_exact() {
    use cqm::serve::{Engine, EngineScratch, EvalPrecision};

    let model = tiny_model();
    let engine = Engine::new(&model).expect("engine");
    let reference = reference_system(&model);
    let server = CqmServer::start(
        ModelSource::Fresh(model),
        ServerConfig {
            precision: EvalPrecision::BoundedUlp,
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("start bounded server");
    let mut c = client(server.local_addr());
    let mut scratch = EngineScratch::new();
    for cues in probe_cues(40) {
        let served = c.classify(&cues).expect("served answer");
        let want = engine
            .classify_one_prec(&cues, EvalPrecision::BoundedUlp, &mut scratch)
            .expect("engine bounded path");
        assert_bit_identical(&served, &want, "served vs bounded engine");
        // Quality is exact at any serving precision.
        let local = reference
            .classify_with_quality(&cues)
            .expect("exact reference");
        match (served.quality, local.quality) {
            (Quality::Value(x), Quality::Value(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "quality must stay exact");
            }
            (x, y) => assert_eq!(x, y, "quality variant must stay exact"),
        }
    }
    server.shutdown().expect("shutdown");
}
