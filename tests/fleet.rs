//! Multi-tenant fleet drill: bulkhead isolation, checkpoint-backed LRU
//! warm-load, and zero-drop hot swap at the *server* level.
//!
//! The contract under test (ISSUE: multi-tenant model registry):
//!
//! * per-tenant answers are **bit-identical** to an in-process `CqmSystem`
//!   on that tenant's model, regardless of LRU capacity (eviction order),
//!   warm-load timing, worker count, or how tenant traffic interleaves;
//! * a corrupt checkpoint quarantines **only** its own tenant — peers keep
//!   answering bit-identically while the sick tenant gets a typed
//!   `TenantQuarantined`;
//! * a failed swap (validation or persistence) rolls back to last-good and
//!   the tenant keeps serving the old model; a kill-restart with a torn
//!   swap temp file on disk recovers the last-good generation.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use cqm::classify::FisClassifier;
use cqm::core::model::{CqmModel, MODEL_VERSION};
use cqm::core::normalize::Quality;
use cqm::core::pipeline::{CqmSystem, QualifiedClassification};
use cqm::core::QualityMeasure;
use cqm::fuzzy::{MembershipFunction, TskFis, TskRule};
use cqm::resilience::DiskFaultPlan;
use cqm::serve::{
    ClientConfig, CqmClient, CqmServer, FleetConfig, ModelSource, ServeError, ServedModel,
    ServerConfig, WireError, WireErrorKind,
};

/// One-cue two-class model whose quality surface depends on `threshold`,
/// so distinct thresholds give bit-distinct accept/reject behavior — one
/// model per tenant, cheap enough to build dozens.
fn model_with_threshold(threshold: f64, note: &str) -> ServedModel {
    let g = |mu: f64, s: f64| MembershipFunction::gaussian(mu, s).expect("gaussian");
    let class_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.3)], vec![0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.3)], vec![0.0, 1.0]).expect("rule"),
    ])
    .expect("class fis");
    let classifier = FisClassifier::from_fis(class_fis, 2).expect("classifier");
    let quality_fis = TskFis::new(vec![
        TskRule::new(vec![g(0.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 1.0]).expect("rule"),
        TskRule::new(vec![g(0.0, 0.25), g(1.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
        TskRule::new(vec![g(1.0, 0.25), g(0.0, 0.25)], vec![0.0, 0.0, 0.0]).expect("rule"),
    ])
    .expect("quality fis");
    let model = CqmModel {
        version: MODEL_VERSION,
        measure: QualityMeasure::new(quality_fis).expect("measure"),
        threshold,
        note: note.into(),
    };
    ServedModel::new(classifier, model).expect("served model")
}

fn reference_system(model: &ServedModel) -> CqmSystem<FisClassifier> {
    CqmSystem::new(
        model.classifier().clone(),
        model.model().measure.clone(),
        model.model().filter().expect("threshold"),
    )
    .expect("reference system")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cqm_fleet_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn client(addr: SocketAddr) -> CqmClient {
    CqmClient::connect(addr, ClientConfig::default()).expect("connect")
}

fn assert_bit_identical(a: &QualifiedClassification, b: &QualifiedClassification, tag: &str) {
    assert_eq!(a.class, b.class, "{tag}: class");
    assert_eq!(a.decision, b.decision, "{tag}: decision");
    match (a.quality, b.quality) {
        (Quality::Value(x), Quality::Value(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: quality bits");
        }
        (x, y) => assert_eq!(x, y, "{tag}: quality variant"),
    }
}

/// Deterministic probe cues covering accepts, discards and both classes.
fn probe_cues(n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| vec![-0.1 + 1.2 * i as f64 / n as f64]).collect()
}

/// The tenant fixture: six bit-distinct models keyed `t0..t5`.
fn tenant_models() -> Vec<(String, ServedModel)> {
    (0..6)
        .map(|i| {
            let key = format!("t{i}");
            let model = model_with_threshold(0.2 + 0.1 * i as f64, &key);
            (key, model)
        })
        .collect()
}

#[test]
fn per_tenant_answers_are_bit_identical_across_fleet_shapes() {
    // The property: eviction order, warm-load timing, worker count and
    // request interleaving are all *invisible* in the answers. Every
    // served classification must match the tenant's own in-process
    // reference bit-for-bit, under every fleet shape tried.
    let tenants = tenant_models();
    let references: Vec<(String, CqmSystem<FisClassifier>)> = tenants
        .iter()
        .map(|(k, m)| (k.clone(), reference_system(m)))
        .collect();
    let cues = probe_cues(8);

    for (max_active, workers) in [(1usize, 1usize), (2, 4), (8, 1), (8, 4)] {
        let dir = scratch_dir(&format!("shapes_{max_active}_{workers}"));
        let server = CqmServer::start(
            ModelSource::Fresh(model_with_threshold(0.5, "default")),
            ServerConfig {
                workers,
                fleet: FleetConfig {
                    max_active,
                    store_dir: Some(dir.clone()),
                    ..FleetConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("start");
        for (key, model) in &tenants {
            server.install_model(key, model.clone()).expect("install");
        }
        let mut c = client(server.local_addr());

        // Order A: round-robin across tenants (every request may churn
        // the LRU at max_active = 1). Order B: per-tenant blocks. Order
        // C: reverse round-robin. Same answers demanded from all three.
        let tag = format!("max_active={max_active} workers={workers}");
        for cue in &cues {
            for (key, reference) in &references {
                let served = c.classify_for(Some(key), cue).expect("classify");
                let expected = reference.classify_with_quality(cue).expect("reference");
                assert_bit_identical(&served, &expected, &format!("{tag} rr {key}"));
            }
        }
        for (key, reference) in &references {
            for cue in &cues {
                let served = c.classify_for(Some(key), cue).expect("classify");
                let expected = reference.classify_with_quality(cue).expect("reference");
                assert_bit_identical(&served, &expected, &format!("{tag} block {key}"));
            }
        }
        for cue in &cues {
            for (key, reference) in references.iter().rev() {
                let served = c.classify_for(Some(key), cue).expect("classify");
                let expected = reference.classify_with_quality(cue).expect("reference");
                assert_bit_identical(&served, &expected, &format!("{tag} rev {key}"));
            }
        }

        let health = server.shutdown().expect("shutdown");
        if max_active == 1 {
            assert!(
                health.evictions > 0,
                "round-robin at capacity 1 must evict: {health:?}"
            );
            assert!(health.warm_loads > 0, "evicted tenants must reload");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn corrupt_checkpoint_quarantines_only_its_tenant_at_the_server() {
    let dir = scratch_dir("quarantine");
    let good = model_with_threshold(0.3, "good");
    let bad = model_with_threshold(0.6, "bad");
    let reference = reference_system(&good);

    // Seed both tenants, then corrupt bad's checkpoint on disk and
    // restart, so the load failure happens on the warm path.
    {
        let seeder = CqmServer::start(
            ModelSource::Fresh(model_with_threshold(0.5, "default")),
            ServerConfig {
                fleet: FleetConfig {
                    store_dir: Some(dir.clone()),
                    ..FleetConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("seed start");
        seeder.install_model("good", good.clone()).expect("install good");
        seeder.install_model("bad", bad).expect("install bad");
        seeder.shutdown().expect("seed shutdown");
    }
    let bad_path = dir.join("bad.ckpt");
    let mut bytes = std::fs::read(&bad_path).expect("read bad.ckpt");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&bad_path, &bytes).expect("corrupt bad.ckpt");

    let server = CqmServer::start(
        ModelSource::Fresh(model_with_threshold(0.5, "default")),
        ServerConfig {
            fleet: FleetConfig {
                store_dir: Some(dir.clone()),
                breaker_cooldown: 1_000_000, // keep it quarantined for the test
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let mut c = client(server.local_addr());

    let err = c.classify_for(Some("bad"), &[0.5]).expect_err("bad tenant");
    match err {
        ServeError::Remote(WireError { kind, detail }) => {
            assert_eq!(kind, WireErrorKind::TenantQuarantined);
            assert!(detail.contains("bad"), "detail names the tenant: {detail}");
        }
        other => panic!("want TenantQuarantined, got {other}"),
    }
    // The peer — and the default tenant — keep answering bit-identically.
    for cue in probe_cues(6) {
        let served = c.classify_for(Some("good"), &cue).expect("good serves");
        let expected = reference.classify_with_quality(&cue).expect("reference");
        assert_bit_identical(&served, &expected, "peer during quarantine");
    }
    c.classify(&[0.5]).expect("default tenant serves");
    let health = server.shutdown().expect("shutdown");
    assert_eq!(health.tenants_quarantined, 1, "health: {health:?}");
    assert!(health.quarantined_answers >= 1, "health: {health:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_swap_rolls_back_and_the_tenant_keeps_serving_last_good() {
    // A swap whose persisted checkpoint cannot be read back (every read
    // corrupted by the seeded injector) must fail, re-persist last-good,
    // and leave the live engine untouched — requests never see the
    // candidate.
    let dir = scratch_dir("swapfail");
    let old_model = model_with_threshold(0.5, "old");
    let reference = reference_system(&old_model);
    {
        let seeder = CqmServer::start(
            ModelSource::Fresh(model_with_threshold(0.5, "default")),
            ServerConfig {
                fleet: FleetConfig {
                    store_dir: Some(dir.clone()),
                    ..FleetConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("seed start");
        seeder.install_model("t", old_model.clone()).expect("install");
        seeder.shutdown().expect("seed shutdown");
    }
    let server = CqmServer::start(
        ModelSource::Fresh(model_with_threshold(0.5, "default")),
        ServerConfig {
            fleet: FleetConfig {
                store_dir: Some(dir.clone()),
                disk_faults: Some(DiskFaultPlan {
                    corrupt_p: 1.0,
                    warmup_ops: 1, // the warm-load itself succeeds...
                    ..DiskFaultPlan::clean(99)
                }),
                probe_cues: probe_cues(4),
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start");
    let mut c = client(server.local_addr());

    // Warm-load t (the one clean read), then serve it.
    let before = c.classify_for(Some("t"), &[0.4]).expect("before swap");
    assert_bit_identical(
        &before,
        &reference.classify_with_quality(&[0.4]).expect("reference"),
        "before swap",
    );

    // ...but the swap's reload-verify read is corrupted: rollback.
    let err = server
        .swap_model("t", model_with_threshold(0.2, "candidate"))
        .expect_err("swap must fail verification");
    assert!(matches!(err, ServeError::Persist(_)), "got {err}");

    // Still serving last-good, bit-identically.
    for cue in probe_cues(6) {
        let served = c.classify_for(Some("t"), &cue).expect("after rollback");
        let expected = reference.classify_with_quality(&cue).expect("reference");
        assert_bit_identical(&served, &expected, "after rollback");
    }
    let health = server.shutdown().expect("shutdown");
    assert_eq!(health.swaps, 0, "health: {health:?}");
    assert_eq!(health.swap_rollbacks, 1, "health: {health:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_restart_mid_swap_recovers_the_last_good_generation() {
    // A crash between the swap's temp-file write and its rename leaves a
    // torn `.ckpt.tmp` sibling beside an intact last-good checkpoint.
    // The restarted server must list, load and serve the last-good
    // generation and ignore the torn leftover.
    let dir = scratch_dir("killswap");
    let live = model_with_threshold(0.4, "live");
    let reference = reference_system(&live);
    {
        let seeder = CqmServer::start(
            ModelSource::Fresh(model_with_threshold(0.5, "default")),
            ServerConfig {
                fleet: FleetConfig {
                    store_dir: Some(dir.clone()),
                    ..FleetConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("seed start");
        seeder.install_model("t", live.clone()).expect("install");
        // Prove a live swap *would* bump the generation, then "crash".
        seeder
            .swap_model("t", model_with_threshold(0.7, "next-gen"))
            .expect("live swap");
        seeder.shutdown().expect("seed shutdown");
    }
    // The kill: fake the torn mid-swap temp file of an interrupted
    // *second* swap. The main checkpoint still holds the swapped-in model.
    std::fs::write(dir.join("t.ckpt.tmp"), b"torn mid-rename").expect("torn tmp");

    let reborn = CqmServer::start(
        ModelSource::Fresh(model_with_threshold(0.5, "default")),
        ServerConfig {
            fleet: FleetConfig {
                store_dir: Some(dir.clone()),
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("restart");
    let mut c = client(reborn.local_addr());
    let swapped_reference = reference_system(&model_with_threshold(0.7, "next-gen"));
    for cue in probe_cues(6) {
        let served = c.classify_for(Some("t"), &cue).expect("post-restart");
        let expected = swapped_reference
            .classify_with_quality(&cue)
            .expect("reference");
        assert_bit_identical(&served, &expected, "post-restart last-good");
    }
    // And the pre-swap model is genuinely different on at least one cue
    // (sanity that the bit-identity above is not vacuous).
    let x = [0.5];
    let old = reference.classify_with_quality(&x).expect("old");
    let new = swapped_reference.classify_with_quality(&x).expect("new");
    assert_ne!(old.decision.is_accept(), new.decision.is_accept());
    reborn.shutdown().expect("shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_tenant_is_shed_without_touching_peers() {
    // Bulkhead sanity at the protocol level: a tenant at its in-flight
    // budget answers `Overloaded` while a peer admits instantly. The
    // budget is held by parked leases, which we simulate with a slow
    // eval delay and a saturated queue of one tenant's requests.
    let dir = scratch_dir("bulkhead");
    let server = CqmServer::start(
        ModelSource::Fresh(model_with_threshold(0.5, "default")),
        ServerConfig {
            workers: 1,
            eval_delay: Some(Duration::from_millis(120)),
            fleet: FleetConfig {
                per_tenant_inflight: 1,
                store_dir: Some(dir.clone()),
                ..FleetConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("start");
    server
        .install_model("hot", model_with_threshold(0.3, "hot"))
        .expect("install hot");
    server
        .install_model("calm", model_with_threshold(0.6, "calm"))
        .expect("install calm");
    let addr = server.local_addr();

    // Session 1 parks a request on "hot" (slow eval holds its lease).
    let parked = std::thread::spawn(move || {
        let mut c1 = client(addr);
        c1.classify_for(Some("hot"), &[0.5]).expect("parked request")
    });
    std::thread::sleep(Duration::from_millis(30));

    // Session 2: "hot" is over budget — immediate typed shed, no retry
    // (retries disabled so the shed is observable).
    let mut c2 = CqmClient::connect(
        addr,
        ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let err = c2
        .classify_for(Some("hot"), &[0.5])
        .expect_err("budget of 1 is held");
    match err {
        ServeError::Remote(WireError { kind, .. }) => {
            assert_eq!(kind, WireErrorKind::Overloaded)
        }
        other => panic!("want Overloaded, got {other}"),
    }
    // The peer still admits (it waits behind the same single worker, but
    // is never *refused*).
    c2.classify_for(Some("calm"), &[0.5]).expect("peer admits");
    parked.join().expect("parked thread");
    let health = server.shutdown().expect("shutdown");
    assert!(health.tenant_overloads >= 1, "health: {health:?}");
    std::fs::remove_dir_all(&dir).ok();
}
