//! Failure injection: malformed cues, uncovered inputs, ε propagation, and
//! appliance behaviour under degraded event streams.

use cqm::appliance::camera::{CameraConfig, WhiteboardCamera};
use cqm::appliance::events::ContextEvent;
use cqm::appliance::pen::train_pen;
use cqm::core::classifier::ClassId;
use cqm::core::filter::{Decision, QualityFilter};
use cqm::core::fusion::{fuse, ContextReport, FusionRule};
use cqm::core::normalize::Quality;
use cqm::core::pipeline::CqmSystem;
use cqm::sensors::Context;

#[test]
fn nan_and_wrong_dimension_cues_are_errors_not_panics() {
    let build = train_pen(1, 1).expect("training");
    let system =
        CqmSystem::from_trained(build.classifier.clone(), &build.trained_cqm).expect("compose");
    assert!(system.classify_with_quality(&[f64::NAN, 0.1, 0.1]).is_err());
    assert!(system.classify_with_quality(&[0.1, 0.1]).is_err());
    assert!(system
        .classify_with_quality(&[f64::INFINITY, 0.0, 0.0])
        .is_err());
}

#[test]
fn saturated_cues_yield_epsilon_and_are_discarded() {
    let build = train_pen(1, 1).expect("training");
    // A cue vector far outside anything the FIS saw: stuck-at-full-scale
    // sensor. The classifier may still emit a class (clamped), but the
    // quality must be ε, and ε is always discarded.
    let stuck = vec![500.0, 500.0, 500.0];
    let class = ClassId(2);
    let q = build
        .trained_cqm
        .measure
        .measure(&stuck, class)
        .expect("measure on uncovered input");
    assert!(q.is_epsilon(), "expected epsilon, got {q}");
    let filter = QualityFilter::new(0.0).unwrap(); // even the laxest filter
    assert_eq!(filter.decide(q), Decision::Discard);
}

#[test]
fn epsilon_only_fusion_is_rejected_mixed_fusion_survives() {
    let eps = |src: &str| ContextReport {
        source: src.into(),
        class: ClassId(0),
        quality: Quality::Epsilon,
    };
    assert!(fuse(&[eps("a"), eps("b")], FusionRule::WeightedSum).is_err());
    let mut reports = vec![eps("a"), eps("b")];
    reports.push(ContextReport {
        source: "c".into(),
        class: ClassId(1),
        quality: Quality::Value(0.4),
    });
    let fused = fuse(&reports, FusionRule::WeightedSum).expect("one usable report");
    assert_eq!(fused.class, ClassId(1));
    assert_eq!(fused.epsilon_reports, 2);
}

#[test]
fn camera_survives_all_discarded_stream() {
    // Every event discarded: the quality-aware camera must simply do
    // nothing (no panic, no snapshot).
    let mut cam = WhiteboardCamera::new(CameraConfig::default()).unwrap();
    for t in 0..50 {
        cam.observe(&ContextEvent {
            source: "pen".into(),
            context: Context::Writing,
            quality: Quality::Value(0.1),
            decision: Decision::Discard,
            timestamp: t as f64,
        });
    }
    cam.finish();
    assert!(cam.snapshots().is_empty());
    let (seen, used) = cam.event_counts();
    assert_eq!(seen, 50);
    assert_eq!(used, 0);
}

#[test]
fn camera_handles_epsilon_quality_events() {
    let mut cam = WhiteboardCamera::new(CameraConfig {
        use_quality: false, // even a naive camera must not choke on ε
        ..CameraConfig::default()
    })
    .unwrap();
    for t in 0..5 {
        cam.observe(&ContextEvent {
            source: "pen".into(),
            context: Context::Writing,
            quality: Quality::Epsilon,
            decision: Decision::Discard,
            timestamp: t as f64,
        });
    }
    for t in 5..10 {
        cam.observe(&ContextEvent {
            source: "pen".into(),
            context: Context::LyingStill,
            quality: Quality::Epsilon,
            decision: Decision::Discard,
            timestamp: t as f64,
        });
    }
    cam.finish();
    // Naive camera acted on the classes regardless of ε quality.
    assert_eq!(cam.snapshots().len(), 1);
}

#[test]
fn training_rejects_degenerate_labels() {
    use cqm::core::training::{train_cqm, CqmTrainingConfig};
    let build = train_pen(1, 1).expect("training");
    // All-identical truth labels make the classifier all-right or
    // all-wrong: the pipeline must refuse, not produce a bogus threshold.
    let cues: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.01, 0.1, 0.1]).collect();
    let truth = vec![ClassId(0); 50];
    let result = train_cqm(
        &build.classifier,
        &cues,
        &truth,
        &CqmTrainingConfig::fast(),
    );
    assert!(result.is_err());
}
